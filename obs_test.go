package membottle_test

import (
	"bytes"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"membottle"
	"membottle/internal/obs"
)

// obsSamplerSystem is newSamplerSystem with an observability bundle
// attached (or not), on the batched engine.
func obsSamplerSystem(t *testing.T, app string, o *membottle.Obs) (*membottle.System, *membottle.Sampler) {
	t.Helper()
	cfg := membottle.DefaultConfig()
	cfg.Obs = o
	return newSamplerSystem(t, cfg, app)
}

// TestObsDeterminism is the layer's core contract: attaching metrics and
// tracing must not change the simulation by one bit. The proof is the
// same one the checkpoint/resume tests use — the final checkpoints of an
// instrumented and an uninstrumented run are byte-identical — plus equal
// profiler estimates.
func TestObsDeterminism(t *testing.T) {
	const app, budget = "tomcatv", uint64(24_000_000)

	plain, plainProf := obsSamplerSystem(t, app, nil)
	if err := plain.RunContext(nil, budget); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	var want bytes.Buffer
	if err := plain.Checkpoint(&want); err != nil {
		t.Fatalf("plain checkpoint: %v", err)
	}

	o := membottle.NewObs(membottle.ObsOptions{})
	observed, obsProf := obsSamplerSystem(t, app, o)
	if err := observed.RunContext(nil, budget); err != nil {
		t.Fatalf("observed run: %v", err)
	}
	observed.FlushObs()
	var got bytes.Buffer
	if err := observed.Checkpoint(&got); err != nil {
		t.Fatalf("observed checkpoint: %v", err)
	}

	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("observability changed the simulation: checkpoints differ (%d vs %d bytes)",
			want.Len(), got.Len())
	}
	if plain.Machine.State() != observed.Machine.State() {
		t.Errorf("machine state diverged: %+v vs %+v", plain.Machine.State(), observed.Machine.State())
	}
	pe, oe := plainProf.Estimates(), obsProf.Estimates()
	if len(pe) != len(oe) {
		t.Fatalf("estimate counts diverged: %d vs %d", len(pe), len(oe))
	}
	for i := range pe {
		if pe[i].Object.Name != oe[i].Object.Name || pe[i].Pct != oe[i].Pct || pe[i].Samples != oe[i].Samples {
			t.Errorf("estimate %d diverged: %+v vs %+v", i, pe[i], oe[i])
		}
	}

	// And the bundle actually recorded the run: the checkpoint written
	// above must be in the histogram, interrupts counted, events traced.
	if n := o.Interrupts.Value(); n == 0 || n != observed.Machine.Interrupts {
		t.Errorf("obs interrupts = %d, machine delivered %d", n, observed.Machine.Interrupts)
	}
	if o.Checkpoints.Value() != 1 || o.CheckpointBytes.Count() != 1 {
		t.Errorf("checkpoint instruments: writes=%d sized=%d, want 1/1",
			o.Checkpoints.Value(), o.CheckpointBytes.Count())
	}
	if o.CheckpointBytes.Sum() != uint64(got.Len()) {
		t.Errorf("checkpoint bytes histogram sum %d, wrote %d", o.CheckpointBytes.Sum(), got.Len())
	}
}

// TestObsIntegrationSampler checks the recorded numbers against the
// simulation's own counters and the exported formats against their
// decoders.
func TestObsIntegrationSampler(t *testing.T) {
	const budget = uint64(8_000_000)
	o := membottle.NewObs(membottle.ObsOptions{})
	sys, prof := obsSamplerSystem(t, "mgrid", o)
	if err := sys.RunContext(nil, budget); err != nil {
		t.Fatal(err)
	}
	sys.FlushObs()

	m := sys.Machine
	reg := o.Registry
	if got := o.MissIrqs.Value() + o.TimerIrqs.Value(); got != m.Interrupts {
		t.Errorf("miss+timer irqs = %d, machine interrupts %d", got, m.Interrupts)
	}
	if got := o.Samples.Value(); got != prof.Samples() {
		t.Errorf("obs samples %d, sampler took %d", got, prof.Samples())
	}
	if got := o.IrqLatency.Count(); got != m.Interrupts {
		t.Errorf("latency observations %d, interrupts %d", got, m.Interrupts)
	}
	if got := o.IrqLatency.Sum(); got != m.HandlerCycles {
		t.Errorf("latency cycle sum %d, handler cycles %d", got, m.HandlerCycles)
	}
	if got := reg.Counter("sim.cycles").Value(); got != m.Cycles {
		t.Errorf("flushed cycles %d, machine %d", got, m.Cycles)
	}
	if o.Batches.Value() == 0 || o.BatchRefs.Value() == 0 {
		t.Error("batched hot path recorded nothing")
	}

	// Summary renders and mentions the load-bearing names.
	var sb strings.Builder
	if err := o.Snapshot().WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"-- metrics summary", "sim.interrupts", "core.samples", "sim.irq_latency_cycles"} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("summary missing %q", name)
		}
	}

	// The trace exports round-trip through the strict decoder.
	events := o.Tracer.Events()
	if len(events) == 0 {
		t.Fatal("tracer recorded no events")
	}
	var jl bytes.Buffer
	if err := obs.WriteJSONL(&jl, events); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadJSONL(bytes.NewReader(jl.Bytes()))
	if err != nil {
		t.Fatalf("exported JSONL does not decode: %v", err)
	}
	if len(back) != len(events) {
		t.Fatalf("JSONL round trip lost events: %d -> %d", len(events), len(back))
	}
	var ct bytes.Buffer
	if err := obs.WriteChromeTrace(&ct, events); err != nil {
		t.Fatalf("chrome export failed: %v", err)
	}
	// Within each kind, cycles are nondecreasing (an interrupt's slice
	// event carries its start cycle but is emitted after the handler
	// returns, so kinds may interleave; order within a kind must hold).
	last := map[obs.EventKind]uint64{}
	for i, ev := range events {
		if ev.Cycle < last[ev.Kind] {
			t.Fatalf("%v events out of order at %d: %d after %d", ev.Kind, i, ev.Cycle, last[ev.Kind])
		}
		last[ev.Kind] = ev.Cycle
	}
}

// measureAlternating times two configurations best-of-reps, alternating
// within each repetition like cmd/mbbench does, and returns the fastest
// wall time of each plus their (must-match) reference counts.
func measureAlternating(t *testing.T, reps int, runA, runB func() uint64) (bestA, bestB time.Duration, refsA, refsB uint64) {
	t.Helper()
	for rep := 0; rep < reps; rep++ {
		runtime.GC()
		start := time.Now()
		ra := runA()
		da := time.Since(start)
		runtime.GC()
		start = time.Now()
		rb := runB()
		db := time.Since(start)
		if rep == 0 {
			bestA, bestB, refsA, refsB = da, db, ra, rb
			continue
		}
		if ra != refsA || rb != refsB {
			t.Fatalf("nondeterministic repetition: refs %d/%d then %d/%d", refsA, refsB, ra, rb)
		}
		if da < bestA {
			bestA = da
		}
		if db < bestB {
			bestB = db
		}
	}
	return bestA, bestB, refsA, refsB
}

// TestObsOverheadGuard enforces the hot-path budget: with Obs nil the
// batched engine pays one nil check per batch, so an obs-off run must not
// be measurably slower than... itself with obs attached beyond a small
// factor, and the reference streams must be identical (the determinism
// tripwire). Wall-clock thresholds are generous by default because CI
// machines are noisy; set MB_OVERHEAD_STRICT=1 on quiet hardware for the
// 3% bound the observability layer is designed to. cmd/mbbench -obs is
// the documenting benchmark behind the README numbers.
func TestObsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	const app, budget, reps = "mgrid", uint64(4_000_000), 3

	run := func(o *membottle.Obs) uint64 {
		cfg := membottle.DefaultConfig()
		cfg.SkipTruth = true
		cfg.Obs = o
		sys := membottle.NewSystem(cfg)
		if err := sys.LoadWorkloadByName(app); err != nil {
			t.Fatal(err)
		}
		sys.Run(budget)
		sys.FlushObs()
		return sys.Machine.Cache.Stats.Accesses()
	}

	offNs, onNs, offRefs, onRefs := measureAlternating(t, reps,
		func() uint64 { return run(nil) },
		func() uint64 { return run(membottle.NewObs(membottle.ObsOptions{})) },
	)
	if offRefs != onRefs {
		t.Fatalf("obs changed the reference stream: %d refs off, %d on", offRefs, onRefs)
	}
	if raceDetectorEnabled {
		t.Log("race detector build: refs verified, timing assertions skipped")
		return
	}
	limit := 1.25
	if os.Getenv("MB_OVERHEAD_STRICT") == "1" {
		limit = 1.03
	}
	ratio := float64(onNs) / float64(offNs)
	t.Logf("obs-off %v, obs-on %v, ratio %.3fx (limit %.2fx)", offNs, onNs, ratio, limit)
	if ratio > limit {
		t.Errorf("obs-on run is %.2fx the obs-off run, over the %.2fx limit", ratio, limit)
	}
}

// TestObsOffKeepsBatchedSpeedup guards the other side of the bargain:
// with Obs nil, the batched engine still beats the scalar loop by a clear
// margin, so the instrumentation points did not erode the fast path.
func TestObsOffKeepsBatchedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	if raceDetectorEnabled {
		t.Skip("timing test; meaningless under the race detector")
	}
	const app, budget, reps = "mgrid", uint64(4_000_000), 3

	run := func(scalar bool) uint64 {
		cfg := membottle.DefaultConfig()
		cfg.SkipTruth = true
		cfg.ScalarRefs = scalar
		sys := membottle.NewSystem(cfg)
		if err := sys.LoadWorkloadByName(app); err != nil {
			t.Fatal(err)
		}
		sys.Run(budget)
		return sys.Machine.Cache.Stats.Accesses()
	}

	scalarNs, batchedNs, scalarRefs, batchedRefs := measureAlternating(t, reps,
		func() uint64 { return run(true) },
		func() uint64 { return run(false) },
	)
	if scalarRefs != batchedRefs {
		t.Fatalf("engines diverged: scalar %d refs, batched %d", scalarRefs, batchedRefs)
	}
	speedup := float64(scalarNs) / float64(batchedNs)
	t.Logf("scalar %v, batched %v, speedup %.2fx", scalarNs, batchedNs, speedup)
	if speedup < 1.15 {
		t.Errorf("batched speedup %.2fx below the 1.15x floor — hot path regressed", speedup)
	}
}

// TestObsProgressDoesNotPerturb runs with the progress hook ticking as
// fast as the wall clock allows and checks the simulation still matches
// an unhooked run exactly.
func TestObsProgressDoesNotPerturb(t *testing.T) {
	const app, budget = "mgrid", uint64(4_000_000)
	plain, _ := obsSamplerSystem(t, app, nil)
	if err := plain.RunContext(nil, budget); err != nil {
		t.Fatal(err)
	}
	hooked, _ := obsSamplerSystem(t, app, nil)
	p := hooked.AttachProgress(&bytes.Buffer{}, time.Nanosecond, budget)
	if err := hooked.RunContext(nil, budget); err != nil {
		t.Fatal(err)
	}
	if p.Lines() == 0 {
		t.Error("progress hook never printed")
	}
	if plain.Machine.State() != hooked.Machine.State() {
		t.Errorf("progress hook perturbed the run: %+v vs %+v",
			plain.Machine.State(), hooked.Machine.State())
	}
}
