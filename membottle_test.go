package membottle_test

import (
	"math"
	"testing"

	"membottle"
)

func TestWorkloadsRegistry(t *testing.T) {
	names := membottle.Workloads()
	if len(names) < 8 {
		t.Fatalf("only %d workloads registered: %v", len(names), names)
	}
	w, err := membottle.NewWorkload("tomcatv")
	if err != nil || w.Name() != "tomcatv" {
		t.Fatalf("NewWorkload: %v %v", w, err)
	}
	if _, err := membottle.NewWorkload("bogus"); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestSystemEndToEndSearch(t *testing.T) {
	sys := membottle.NewSystem(membottle.DefaultConfig())
	if err := sys.LoadWorkloadByName("mgrid"); err != nil {
		t.Fatal(err)
	}
	prof := membottle.NewSearch(membottle.SearchConfig{N: 10, Interval: 8_000_000})
	if err := sys.Attach(prof); err != nil {
		t.Fatal(err)
	}
	sys.Run(60_000_000)

	es := prof.Estimates()
	if len(es) != 3 {
		t.Fatalf("found %d objects, want 3: %v", len(es), es)
	}
	// mgrid: U/R ~40.6 each, V ~18.8.
	var vPct float64
	for _, e := range es {
		if e.Object.Name == "V" {
			vPct = e.Pct
		}
	}
	if math.Abs(vPct-18.8) > 3 {
		t.Errorf("V estimated at %.1f%%, want ~18.8%%", vPct)
	}
	// Ground truth is tracked by default and agrees.
	if got := sys.Truth.Pct("V"); math.Abs(got-18.8) > 1 {
		t.Errorf("ground truth V = %.1f%%", got)
	}
	ov := sys.Overhead()
	if ov.Interrupts == 0 || ov.HandlerCycles == 0 {
		t.Errorf("overhead not tracked: %+v", ov)
	}
	if ov.SlowdownPct() <= 0 || ov.SlowdownPct() > 5 {
		t.Errorf("search slowdown %.3f%% implausible", ov.SlowdownPct())
	}
}

func TestSystemEndToEndSampler(t *testing.T) {
	sys := membottle.NewSystem(membottle.DefaultConfig())
	if err := sys.LoadWorkloadByName("mgrid"); err != nil {
		t.Fatal(err)
	}
	prof := membottle.NewSampler(membottle.SamplerConfig{Interval: 2000, Mode: membottle.IntervalPrime})
	if err := sys.Attach(prof); err != nil {
		t.Fatal(err)
	}
	sys.Run(40_000_000)
	es := prof.Estimates()
	if len(es) != 3 || es[2].Object.Name != "V" {
		t.Fatalf("sampler estimates: %v", es)
	}
}

func TestAttachBeforeLoadRejected(t *testing.T) {
	sys := membottle.NewSystem(membottle.DefaultConfig())
	if err := sys.Attach(membottle.NewSampler(membottle.SamplerConfig{})); err == nil {
		t.Fatal("attach before LoadWorkload accepted")
	}
}

func TestSkipTruth(t *testing.T) {
	cfg := membottle.DefaultConfig()
	cfg.SkipTruth = true
	sys := membottle.NewSystem(cfg)
	if sys.Truth != nil {
		t.Fatal("SkipTruth did not skip")
	}
}

func TestZeroConfigGetsDefaults(t *testing.T) {
	sys := membottle.NewSystem(membottle.Config{Counters: 2})
	if err := sys.LoadWorkloadByName("figure2"); err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000_000)
	if sys.Machine.Cycles == 0 {
		t.Fatal("machine did not run")
	}
	if sys.Machine.Cache.Config().Size != 2<<20 {
		t.Fatalf("default cache size = %d", sys.Machine.Cache.Config().Size)
	}
}

func TestOverheadMetrics(t *testing.T) {
	o := membottle.Overhead{HandlerCycles: 100, TotalCycles: 1100, Interrupts: 5}
	if got := o.SlowdownPct(); got != 10 {
		t.Fatalf("SlowdownPct = %v, want 10", got)
	}
	if got := o.InterruptsPerBillionCycles(); math.Abs(got-5e9/1100) > 1e-6 {
		t.Fatalf("InterruptsPerBillionCycles = %v", got)
	}
	var zero membottle.Overhead
	if zero.SlowdownPct() != 0 || zero.InterruptsPerBillionCycles() != 0 {
		t.Fatal("zero overhead not zero")
	}
}

func TestTimeshareSystem(t *testing.T) {
	cfg := membottle.DefaultConfig()
	cfg.Timeshare = 2
	sys := membottle.NewSystem(cfg)
	if err := sys.LoadWorkloadByName("mgrid"); err != nil {
		t.Fatal(err)
	}
	prof := membottle.NewSearch(membottle.SearchConfig{N: 10, Interval: 8_000_000})
	if err := sys.Attach(prof); err != nil {
		t.Fatal(err)
	}
	sys.Run(40_000_000)
	if len(prof.Estimates()) == 0 {
		t.Fatal("timeshared search found nothing")
	}
}
