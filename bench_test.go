// Benchmarks regenerating every table and figure in the paper's
// evaluation (shrunken budgets so each iteration is seconds, not minutes;
// use cmd/mbtables and cmd/mbfigures for full-budget runs, or -paper for
// paper-fidelity parameters). Custom metrics report the quantities the
// paper's tables and figures plot, so `go test -bench . -benchmem`
// doubles as a regression harness for the reproduction.
package membottle_test

import (
	"bytes"
	"testing"

	"membottle"
	"membottle/internal/experiments"
	"membottle/internal/trace"
)

// benchOpt shrinks run budgets for benchmarking.
func benchOpt() experiments.Options {
	return experiments.Options{Budget: 40_000_000}
}

// --- Table 1: one benchmark per application ------------------------------

func benchTable1App(b *testing.B, app string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1App(app, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("empty table")
		}
		// Report the worst absolute error of the search column against
		// ground truth — the quantity Table 1 is about.
		worst := 0.0
		for _, row := range r.Rows {
			if row.SearchRank == 0 {
				continue
			}
			if d := row.SearchPct - row.ActualPct; d > worst {
				worst = d
			} else if -d > worst {
				worst = -d
			}
		}
		b.ReportMetric(worst, "search-max-err-pct")
	}
}

func BenchmarkTable1Tomcatv(b *testing.B)  { benchTable1App(b, "tomcatv") }
func BenchmarkTable1Swim(b *testing.B)     { benchTable1App(b, "swim") }
func BenchmarkTable1Su2cor(b *testing.B)   { benchTable1App(b, "su2cor") }
func BenchmarkTable1Mgrid(b *testing.B)    { benchTable1App(b, "mgrid") }
func BenchmarkTable1Applu(b *testing.B)    { benchTable1App(b, "applu") }
func BenchmarkTable1Compress(b *testing.B) { benchTable1App(b, "compress") }
func BenchmarkTable1Ijpeg(b *testing.B)    { benchTable1App(b, "ijpeg") }

// --- Table 2: two-way versus ten-way search ------------------------------

func BenchmarkTable2TwoWayVsTenWay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2App("mgrid", benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		found := 0.0
		if r.TwoWayFoundTop {
			found = 1
		}
		b.ReportMetric(found, "2way-found-top")
	}
}

// --- Figure 2: greedy-search ablation -------------------------------------

func BenchmarkFigure2Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		pq, greedy := 0.0, 0.0
		if r.PQFoundHottest {
			pq = 1
		}
		if r.GreedyFoundHottest {
			greedy = 1
		}
		b.ReportMetric(pq, "pq-found-hottest")
		b.ReportMetric(greedy, "greedy-found-hottest")
	}
}

// --- Figures 3 and 4: perturbation and cost sweep -------------------------

func benchPerturb(b *testing.B, app string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PerturbationApp(app, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Config {
			case "sample(1000)":
				b.ReportMetric(r.SlowdownPct, "sample1k-slowdown-pct")
				b.ReportMetric(r.MissIncreasePct, "sample1k-miss-increase-pct")
			case "search":
				b.ReportMetric(r.SlowdownPct, "search-slowdown-pct")
				b.ReportMetric(r.InterruptsPerBCyc, "search-irqs-per-bcyc")
			}
		}
	}
}

func BenchmarkFigure3And4Mgrid(b *testing.B)    { benchPerturb(b, "mgrid") }
func BenchmarkFigure3And4Compress(b *testing.B) { benchPerturb(b, "compress") }
func BenchmarkFigure3And4Ijpeg(b *testing.B)    { benchPerturb(b, "ijpeg") }

// --- Figure 5: applu phase time series -------------------------------------

func BenchmarkFigure5Phases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		zero := 0
		for _, v := range r.Series["a"] {
			if v == 0 {
				zero++
			}
		}
		b.ReportMetric(float64(zero), "zero-buckets-a")
	}
}

// --- §3.1 resonance study ---------------------------------------------------

func BenchmarkResonance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Resonance(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FixedMaxErr, "fixed-max-err-pct")
		b.ReportMetric(r.PrimeMaxErr, "prime-max-err-pct")
	}
}

// --- design ablations --------------------------------------------------------

func BenchmarkAblationAlignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		aligned, naive, err := experiments.AblationAlignment("tomcatv", benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(aligned.MeanAbsErr, "aligned-mean-err-pct")
		b.ReportMetric(naive.MeanAbsErr, "naive-mean-err-pct")
	}
}

func BenchmarkAblationPhaseHandling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with, without, err := experiments.AblationPhase(experiments.Options{Budget: 170_000_000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(with.MeanAbsErr, "with-mean-err-pct")
		b.ReportMetric(without.MeanAbsErr, "without-mean-err-pct")
	}
}

func BenchmarkAblationTimeshare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ded, shr, err := experiments.AblationTimeshare("mgrid", 2, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ded.MeanAbsErr, "dedicated-mean-err-pct")
		b.ReportMetric(shr.MeanAbsErr, "timeshared-mean-err-pct")
	}
}

// --- microbenchmarks: simulator throughput ---------------------------------

func benchThroughput(b *testing.B, app string, scalar bool) {
	b.Helper()
	cfg := membottle.DefaultConfig()
	cfg.ScalarRefs = scalar
	sys := membottle.NewSystem(cfg)
	if err := sys.LoadWorkloadByName(app); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sys.Run(uint64(b.N))
	b.StopTimer()
	if sys.Machine.AppInsts < uint64(b.N) {
		b.Fatal("budget not consumed")
	}
	refs := sys.Machine.Cache.Stats.Accesses()
	b.ReportMetric(float64(refs)*1e9/float64(b.Elapsed().Nanoseconds()), "refs/s")
}

// The batched/scalar pairs below are the Go-benchmark view of what
// cmd/mbbench measures: identical simulations through the batched hot
// path and through the per-reference oracle loop.

func BenchmarkSimulationThroughput(b *testing.B)       { benchThroughput(b, "mgrid", false) }
func BenchmarkSimulationThroughputScalar(b *testing.B) { benchThroughput(b, "mgrid", true) }
func BenchmarkSimulationTomcatv(b *testing.B)          { benchThroughput(b, "tomcatv", false) }
func BenchmarkSimulationTomcatvScalar(b *testing.B)    { benchThroughput(b, "tomcatv", true) }

func benchReplay(b *testing.B, scalar bool) {
	b.Helper()
	w, err := membottle.NewWorkload("tomcatv")
	if err != nil {
		b.Fatal(err)
	}
	recCfg := membottle.DefaultConfig()
	recCfg.ScalarRefs = true
	recCfg.SkipTruth = true
	rec := membottle.NewSystem(recCfg)
	rec.LoadWorkload(w)
	var buf bytes.Buffer
	if _, err := trace.Record(&buf, w, rec.Machine, 2_000_000); err != nil {
		b.Fatal(err)
	}
	rp, err := trace.NewReplay("tomcatv", &buf)
	if err != nil {
		b.Fatal(err)
	}
	cfg := membottle.DefaultConfig()
	cfg.ScalarRefs = scalar
	cfg.SkipTruth = true
	sys := membottle.NewSystem(cfg)
	sys.LoadWorkload(rp)
	b.ResetTimer()
	sys.Run(uint64(b.N))
	b.StopTimer()
	refs := sys.Machine.Cache.Stats.Accesses()
	b.ReportMetric(float64(refs)*1e9/float64(b.Elapsed().Nanoseconds()), "refs/s")
}

func BenchmarkTraceReplay(b *testing.B)       { benchReplay(b, false) }
func BenchmarkTraceReplayScalar(b *testing.B) { benchReplay(b, true) }

func BenchmarkSamplerOverheadPath(b *testing.B) {
	sys := membottle.NewSystem(membottle.DefaultConfig())
	if err := sys.LoadWorkloadByName("mgrid"); err != nil {
		b.Fatal(err)
	}
	prof := membottle.NewSampler(membottle.SamplerConfig{Interval: 1000})
	if err := sys.Attach(prof); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sys.Run(uint64(b.N))
}

func BenchmarkSearchIterationPath(b *testing.B) {
	sys := membottle.NewSystem(membottle.DefaultConfig())
	if err := sys.LoadWorkloadByName("mgrid"); err != nil {
		b.Fatal(err)
	}
	prof := membottle.NewSearch(membottle.SearchConfig{N: 10, Interval: 500_000})
	if err := sys.Attach(prof); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sys.Run(uint64(b.N))
}

func BenchmarkAblationRetirement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain, retire, err := experiments.AblationRetirement(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(plain.Found)), "plain-objects-found")
		b.ReportMetric(float64(len(retire.Found)), "retire-objects-found")
	}
}
