package membottle

import "membottle/internal/mem"

// Addr is a simulated virtual address.
type Addr = mem.Addr

// newSpace isolates the mem dependency for NewSystem.
func newSpace() *mem.Space { return mem.NewSpace() }

// NewSpaceForTesting exposes a raw address space for callers building
// custom machines in tests or tools.
func NewSpaceForTesting() *mem.Space { return mem.NewSpace() }
