package membottle_test

import (
	"bytes"
	"math"
	"testing"

	"membottle"
	"membottle/internal/trace"
)

// tracedWorkload replays a recorded trace against the object layout the
// original workload's Setup creates — the pattern a user follows to
// profile a captured trace with data-structure attribution.
type tracedWorkload struct {
	orig   membottle.Workload
	replay *trace.Replay
}

func (t *tracedWorkload) Name() string               { return "traced:" + t.orig.Name() }
func (t *tracedWorkload) Setup(m *membottle.Machine) { t.orig.Setup(m) }
func (t *tracedWorkload) Step(m *membottle.Machine)  { t.replay.Step(m) }

// TestTraceReplayProfiling records tomcatv, replays the trace under the
// n-way search, and checks the attribution matches a direct run: the
// deterministic allocator guarantees the replayed addresses resolve to
// the same objects.
func TestTraceReplayProfiling(t *testing.T) {
	const budget = 30_000_000

	// Record.
	rec, err := membottle.NewWorkload("tomcatv")
	if err != nil {
		t.Fatal(err)
	}
	recSys := membottle.NewSystem(membottle.DefaultConfig())
	recSys.LoadWorkload(rec)
	var buf bytes.Buffer
	if _, err := trace.Record(&buf, rec, recSys.Machine, budget); err != nil {
		t.Fatal(err)
	}

	// Replay under the search, with the same Setup for object layout.
	orig, err := membottle.NewWorkload("tomcatv")
	if err != nil {
		t.Fatal(err)
	}
	rp, err := trace.NewReplay("tomcatv", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sys := membottle.NewSystem(membottle.DefaultConfig())
	sys.LoadWorkload(&tracedWorkload{orig: orig, replay: rp})
	prof := membottle.NewSearch(membottle.SearchConfig{N: 10, Interval: 8_000_000})
	if err := sys.Attach(prof); err != nil {
		t.Fatal(err)
	}
	sys.Run(budget)

	es := prof.Estimates()
	if len(es) < 7 {
		t.Fatalf("replay search found %d objects: %v", len(es), es)
	}
	// RX/RY top at ~22.5 each.
	top2 := map[string]bool{es[0].Object.Name: true, es[1].Object.Name: true}
	if !top2["RX"] || !top2["RY"] {
		t.Fatalf("replay top two = %v, want RX and RY", es[:2])
	}
	for _, e := range es[:2] {
		if math.Abs(e.Pct-22.5) > 3 {
			t.Errorf("%s estimated %.1f%%, want ~22.5%%", e.Object.Name, e.Pct)
		}
	}
}

// TestSamplerAndSearchAgree cross-validates the two techniques: on the
// same workload their rankings of the top objects must agree with each
// other and with ground truth.
func TestSamplerAndSearchAgree(t *testing.T) {
	const budget = 60_000_000

	run := func(mk func() membottle.Profiler) ([]membottle.Estimate, *membottle.System) {
		sys := membottle.NewSystem(membottle.DefaultConfig())
		if err := sys.LoadWorkloadByName("su2cor"); err != nil {
			t.Fatal(err)
		}
		p := mk()
		if err := sys.Attach(p); err != nil {
			t.Fatal(err)
		}
		sys.Run(budget)
		return p.Estimates(), sys
	}

	sample, sys1 := run(func() membottle.Profiler {
		return membottle.NewSampler(membottle.SamplerConfig{Interval: 1009, Mode: membottle.IntervalPrime})
	})
	search, _ := run(func() membottle.Profiler {
		return membottle.NewSearch(membottle.SearchConfig{N: 10, Interval: 8_000_000})
	})

	if len(sample) == 0 || len(search) == 0 {
		t.Fatal("a technique found nothing")
	}
	truthTop := sys1.Truth.Ranked()[0].Object.Name
	if sample[0].Object.Name != truthTop {
		t.Errorf("sampler top = %s, truth top = %s", sample[0].Object.Name, truthTop)
	}
	if search[0].Object.Name != truthTop {
		t.Errorf("search top = %s, truth top = %s", search[0].Object.Name, truthTop)
	}
}

// TestCustomCacheGeometry runs the whole stack on a different cache
// (512 KB direct-mapped): attribution should still work, with more
// conflict misses overall.
func TestCustomCacheGeometry(t *testing.T) {
	cfg := membottle.Config{
		Cache:    membottle.CacheConfig{Size: 512 << 10, LineSize: 64, Assoc: 1},
		Counters: 10,
	}
	sys := membottle.NewSystem(cfg)
	if err := sys.LoadWorkloadByName("mgrid"); err != nil {
		t.Fatal(err)
	}
	prof := membottle.NewSearch(membottle.SearchConfig{N: 10, Interval: 8_000_000})
	if err := sys.Attach(prof); err != nil {
		t.Fatal(err)
	}
	sys.Run(40_000_000)
	es := prof.Estimates()
	if len(es) != 3 {
		t.Fatalf("direct-mapped run found %d objects", len(es))
	}
	names := map[string]bool{}
	for _, e := range es {
		names[e.Object.Name] = true
	}
	for _, want := range []string{"U", "R", "V"} {
		if !names[want] {
			t.Errorf("missing %s on the direct-mapped cache", want)
		}
	}
}
