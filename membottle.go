// Package membottle reproduces the system of Buck & Hollingsworth,
// "Using Hardware Performance Monitors to Isolate Memory Bottlenecks"
// (SC 2000): a simulation environment in which two data-centric cache
// profiling techniques — cache-miss address sampling and an n-way search
// over the address space using base/bounds miss counters — attribute
// cache misses to source-level data structures.
//
// A System bundles a simulated machine (virtual CPU + set-associative
// cache + performance-monitor unit) with an object map. Load a workload
// (one of the built-in SPEC95 recreations or your own machine.Workload),
// attach a Profiler (NewSampler or NewSearch), Run, and read the ranked
// Estimates:
//
//	sys := membottle.NewSystem(membottle.DefaultConfig())
//	if err := sys.LoadWorkloadByName("tomcatv"); err != nil { ... }
//	prof := membottle.NewSearch(membottle.SearchConfig{N: 10})
//	if err := sys.Attach(prof); err != nil { ... }
//	sys.Run(100_000_000)
//	for _, e := range prof.Estimates() {
//	    fmt.Printf("%-8s %5.1f%%\n", e.Object.Name, e.Pct)
//	}
//
// The profiler's own code runs *inside* the simulation: its handler
// cycles (including the 8,800-cycle interrupt delivery cost the paper
// measured on an SGI Octane) and its cache footprint are part of the
// simulated execution, so instrumentation cost (Figure 4) and cache
// perturbation (Figure 3) are measurable via Overhead and the cache
// statistics.
package membottle

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"membottle/internal/cache"
	"membottle/internal/checkpoint"
	"membottle/internal/core"
	"membottle/internal/faults"
	"membottle/internal/machine"
	"membottle/internal/mem"
	"membottle/internal/objmap"
	"membottle/internal/obs"
	"membottle/internal/pmu"
	"membottle/internal/sanitize"
	"membottle/internal/trace"
	"membottle/internal/truth"
	"membottle/internal/workload"
)

// Re-exported configuration and result types, so that typical use needs
// only this package.
type (
	// CacheConfig describes the simulated cache geometry.
	CacheConfig = cache.Config
	// CostModel holds the virtual-cycle charges of the simulated CPU.
	CostModel = machine.CostModel
	// Machine is the simulated processor workloads run on; custom
	// workloads receive it in Setup and Step and issue references through
	// its Load, Store, Compute, and Malloc methods.
	Machine = machine.Machine
	// Workload is a simulated application; implement it to profile your
	// own access patterns.
	Workload = machine.Workload
	// Profiler is either technique: *Sampler or *Search.
	Profiler = core.Profiler
	// Estimate is one ranked result row.
	Estimate = core.Estimate
	// SamplerConfig configures miss-address sampling (§2.1 of the paper).
	SamplerConfig = core.SamplerConfig
	// SearchConfig configures the n-way search (§2.2 of the paper).
	SearchConfig = core.SearchConfig
	// Sampler is the miss-address sampling profiler.
	Sampler = core.Sampler
	// Search is the n-way search profiler.
	Search = core.Search
	// IntervalMode selects fixed, prime, or random sample spacing.
	IntervalMode = core.IntervalMode
	// GroundTruth is the exact per-object accounting of a run.
	GroundTruth = truth.Counter
	// ObjectMap resolves addresses to program objects; reachable as
	// System.Objects for frame-layout registration and inspection.
	ObjectMap = objmap.Map
	// Object is one profiled program object (global, heap block, arena
	// group, or stack variable).
	Object = objmap.Object
	// LocalVar declares one local variable of a frame layout, standing in
	// for debug information (stack-variable support, the paper's §5).
	LocalVar = objmap.LocalVar
	// Arena groups related heap allocations contiguously so the search
	// can treat them as a unit (the paper's §5); create via
	// System.Machine.Space.NewArena.
	Arena = mem.Arena
	// FaultConfig configures deterministic fault injection (Config.Faults).
	FaultConfig = faults.Config
	// FaultStats counts the faults an injector actually delivered.
	FaultStats = faults.Stats
	// InjectedError attributes a run failure to injected faults.
	InjectedError = faults.InjectedError
	// InvariantError reports a sanitizer cross-check violation.
	InvariantError = sanitize.InvariantError
	// CancelledError reports a run stopped by context cancellation or a
	// StopCycles limit, carrying the progress made.
	CancelledError = machine.CancelledError
	// Obs is the observability bundle (metrics registry + event tracer)
	// attached via Config.Obs; see internal/obs.
	Obs = obs.Obs
	// ObsOptions configures NewObs.
	ObsOptions = obs.Options
	// TraceEvent is one entry in the observability event trace.
	TraceEvent = obs.Event
	// MetricsSnapshot is a point-in-time copy of the metrics registry.
	MetricsSnapshot = obs.Snapshot
)

// Sentinel errors, matched with errors.Is.
var (
	// ErrCancelled matches every CancelledError.
	ErrCancelled = machine.ErrCancelled
	// ErrInvariant matches every InvariantError.
	ErrInvariant = sanitize.ErrInvariant
	// ErrInjected matches every InjectedError.
	ErrInjected = faults.ErrInjected
	// ErrNotCheckpointable reports that the loaded workload or attached
	// profiler has no serializable state representation (the n-way search
	// deliberately does not support checkpointing).
	ErrNotCheckpointable = errors.New("membottle: component does not support checkpointing")
	// ErrBadCheckpoint matches corrupt or truncated checkpoint data.
	ErrBadCheckpoint = checkpoint.ErrCorrupt
	// ErrSnapshotMismatch reports a well-formed checkpoint that does not
	// belong to the system it is being restored into.
	ErrSnapshotMismatch = errors.New("membottle: checkpoint does not match this system")
)

// ParseFaults parses a fault-injection spec like
// "drop-miss=0.1,zero-counter=0.01,seed=7,apps=tomcatv+swim".
func ParseFaults(spec string) (*FaultConfig, error) { return faults.Parse(spec) }

// AggregateByName merges estimates whose objects share a name — all
// activations of the same stack local, or all blocks of one allocation
// site (the paper's §5 aggregation proposal).
func AggregateByName(es []Estimate) []Estimate { return core.AggregateByName(es) }

// Interval modes for SamplerConfig.Mode.
const (
	IntervalFixed  = core.IntervalFixed
	IntervalPrime  = core.IntervalPrime
	IntervalRandom = core.IntervalRandom
)

// NewObs constructs an observability bundle for Config.Obs. One bundle
// may be shared by several systems (parallel experiment cells); all
// recording is concurrency-safe.
func NewObs(opt ObsOptions) *Obs { return obs.New(opt) }

// NewSampler constructs a sampling profiler.
func NewSampler(cfg SamplerConfig) *Sampler { return core.NewSampler(cfg) }

// NewSearch constructs an n-way search profiler.
func NewSearch(cfg SearchConfig) *Search { return core.NewSearch(cfg) }

// Workloads lists the built-in workload names (the paper's seven SPEC95
// applications plus the Figure 2 synthetic scenario).
func Workloads() []string { return workload.Names() }

// NewWorkload instantiates a built-in workload by name.
func NewWorkload(name string) (Workload, error) { return workload.New(name) }

// Config assembles a simulated system.
type Config struct {
	// Cache is the simulated cache geometry. Defaults to the paper's
	// evaluation cache: 2 MB, 64-byte lines, 4-way, LRU.
	Cache CacheConfig
	// Costs is the virtual-cycle model. Defaults include the paper's
	// 8,800-cycle interrupt delivery cost.
	Costs CostModel
	// Counters is the number of PMU region counters (plus the implicit
	// global counter). The paper assumes ten. Sampling needs none.
	Counters int
	// Timeshare, if positive, emulates having only that many physical
	// conditional counters, multiplexed across the programmed regions
	// every TimeshareQuantum cycles (the paper's "timesharing the single
	// conditional counter" alternative).
	Timeshare        int
	TimeshareQuantum uint64
	// TrackTruth attaches exact ground-truth accounting (the "Actual"
	// column). Enabled by default in NewSystem; set SkipTruth to disable.
	SkipTruth bool
	// ScalarRefs disables the batched reference fast path, forcing every
	// memory reference through the per-reference scalar loop. Batched and
	// scalar execution are bit-identical (the differential oracle tests
	// enforce it); scalar mode is the trusted baseline those tests and
	// cmd/mbbench compare against.
	ScalarRefs bool
	// Sanitize enables the invariant sanitizer: a shadow cache model and
	// per-interrupt cross-checks of PMU counters against cache statistics
	// and ground truth. Divergence surfaces as an InvariantError from
	// RunContext. Forces the scalar reference path; leave off for
	// performance runs.
	Sanitize bool
	// Faults, if non-nil and enabled, installs a deterministic fault
	// injector on the PMU (and on trace replay) for the workloads it
	// applies to: dropped or delayed interrupts, corrupted counters,
	// corrupted trace batches. Profilers must survive with degraded
	// estimates; the sanitizer's simulator invariants still hold.
	Faults *FaultConfig
	// Obs, if non-nil, attaches passive observability: metrics counters,
	// latency histograms, and a bounded event trace. Recording never
	// mutates simulation state, so runs with and without Obs produce
	// bit-identical results; with Obs nil the batched hot path pays one
	// nil check per batch.
	Obs *Obs
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Cache:    cache.DefaultConfig(),
		Costs:    machine.DefaultCosts(),
		Counters: 10,
	}
}

// System is one simulated machine with an object map and (optionally)
// ground-truth accounting.
type System struct {
	Machine *machine.Machine
	Objects *objmap.Map
	// Truth is exact per-object accounting, nil if SkipTruth was set.
	Truth *GroundTruth

	cfg        Config
	appName    string
	workload   Workload
	profiler   Profiler
	injector   *faults.Injector
	checker    *sanitize.Checker
	obsFlushed bool

	// ckCache/ckTruth are scratch snapshot buffers reused across
	// Checkpoint calls: periodic checkpoint writers snapshot the same
	// geometry every time, so after the first write the way copy (32K
	// entries for the paper's 2 MB cache) and the truth counts copy stop
	// allocating.
	ckCache cache.State
	ckTruth truth.State
}

// NewSystem builds an empty simulated system.
func NewSystem(cfg Config) *System {
	if cfg.Cache == (CacheConfig{}) {
		cfg.Cache = cache.DefaultConfig()
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = machine.DefaultCosts()
	}
	space := newSpace()
	c := cache.New(cfg.Cache)
	p := pmu.New(cfg.Counters)
	if cfg.Timeshare > 0 {
		q := cfg.TimeshareQuantum
		if q == 0 {
			q = 100_000
		}
		p.EnableTimesharing(cfg.Timeshare, q)
	}
	m := machine.New(space, c, p, cfg.Costs)
	m.Scalar = cfg.ScalarRefs
	m.Obs = cfg.Obs
	om := objmap.New(space)
	om.BindSpace(space)
	sys := &System{Machine: m, Objects: om, cfg: cfg}
	if !cfg.SkipTruth {
		sys.Truth = truth.Attach(m, om)
	}
	if cfg.Sanitize {
		sys.checker = sanitize.Attach(m, sys.Truth)
	}
	return sys
}

// LoadWorkload runs the workload's Setup and ingests its globals and heap
// blocks into the object map.
func (s *System) LoadWorkload(w Workload) {
	s.workload = w
	w.Setup(s.Machine)
	s.Objects.SyncGlobals(s.Machine.Space)
	s.wireFaults()
}

// LoadWorkloadByName is LoadWorkload for the built-in registry.
func (s *System) LoadWorkloadByName(name string) error {
	w, err := workload.New(name)
	if err != nil {
		return err
	}
	s.appName = name
	s.LoadWorkload(w)
	return nil
}

// wireFaults installs the fault injector when the configuration enables
// faults for the loaded workload. Custom workloads (LoadWorkload with no
// registry name) match an empty fault Apps filter only.
func (s *System) wireFaults() {
	f := s.cfg.Faults
	if f == nil || !f.Enabled() || !f.AppliesTo(s.appName) {
		return
	}
	inj := faults.New(*f)
	s.injector = inj
	s.Machine.PMU.Faults = inj
	if r, ok := s.workload.(*trace.Replay); ok {
		r.Faults = inj
	}
}

// FaultStats returns the counts of faults actually injected so far, or
// nil when no injector is active for the loaded workload.
func (s *System) FaultStats() *FaultStats {
	if s.injector == nil {
		return nil
	}
	st := s.injector.Stats
	return &st
}

// SanitizeReport returns the number of interrupt-boundary invariant
// checks performed and violations raised; both zero when Config.Sanitize
// is off.
func (s *System) SanitizeReport() (boundaries, violations uint64) {
	if s.checker == nil {
		return 0, 0
	}
	return s.checker.Boundaries(), s.checker.Violations()
}

// Attach installs a profiler. Call after LoadWorkload so the profiler
// sees the populated object map.
func (s *System) Attach(p Profiler) error {
	if s.workload == nil {
		return fmt.Errorf("membottle: attach after LoadWorkload, so the profiler sees the object map")
	}
	if err := p.Install(s.Machine, s.Objects); err != nil {
		return err
	}
	s.profiler = p
	return nil
}

// Run simulates until the application has executed at least budget
// instructions (instrumentation handler work does not count toward the
// budget, matching the paper's equal-application-instructions comparison).
func (s *System) Run(budget uint64) {
	s.Machine.Run(s.workload, budget)
}

// RunContext is Run under supervision: the run stops cleanly (at a
// workload step boundary) when ctx is cancelled or the machine's
// StopCycles limit is reached, returning a CancelledError with the
// progress made; sanitizer violations surface as an InvariantError
// instead of a panic. A nil ctx is treated as context.Background().
// Passing budget 0 with Machine.StopCycles set runs to the cycle limit.
func (s *System) RunContext(ctx context.Context, budget uint64) error {
	err := s.Machine.RunContext(ctx, s.workload, budget)
	if s.checker != nil {
		if ferr := s.checker.Final(); ferr != nil {
			err = errors.Join(err, ferr)
		}
	}
	return err
}

// workloadName identifies the loaded workload in checkpoints: the
// registry name when loaded by name, the concrete Go type otherwise.
func (s *System) workloadName() string {
	if s.appName != "" {
		return s.appName
	}
	return fmt.Sprintf("%T", s.workload)
}

// Checkpoint writes a versioned snapshot of the run to w. Call it only
// when the machine is at a workload step boundary — after Run returned,
// or after RunContext returned a clean CancelledError (Clean true);
// snapshots taken mid-step are rejected at restore by the fingerprint
// checks or resume divergently. Returns ErrNotCheckpointable when the
// workload or attached profiler cannot serialize its state (notably the
// n-way search profiler).
func (s *System) Checkpoint(w io.Writer) error {
	if s.workload == nil {
		return fmt.Errorf("membottle: no workload loaded")
	}
	wc, ok := s.workload.(machine.Checkpointer)
	if !ok {
		return fmt.Errorf("%w: workload %s", ErrNotCheckpointable, s.workloadName())
	}
	wdata, err := wc.CheckpointState()
	if err != nil {
		return err
	}
	s.Machine.Cache.StateInto(&s.ckCache)
	snap := &checkpoint.Snapshot{
		Machine:  s.Machine.State(),
		Cache:    s.ckCache,
		PMU:      s.Machine.PMU.State(),
		Space:    checkpoint.Fingerprint(s.Machine.Space),
		Workload: checkpoint.Opaque{Name: s.workloadName(), Data: wdata},
	}
	if s.Truth != nil {
		if err := s.Truth.StateInto(&s.ckTruth); err != nil {
			return fmt.Errorf("%w: %w", ErrNotCheckpointable, err)
		}
		snap.Truth = &s.ckTruth
	}
	if s.profiler != nil {
		pc, ok := s.profiler.(machine.Checkpointer)
		if !ok {
			return fmt.Errorf("%w: profiler %T", ErrNotCheckpointable, s.profiler)
		}
		pdata, err := pc.CheckpointState()
		if err != nil {
			return err
		}
		snap.Profiler = &checkpoint.Opaque{Name: fmt.Sprintf("%T", s.profiler), Data: pdata}
	}
	if o := s.Machine.Obs; o != nil {
		cw := &countingWriter{w: w}
		if err := checkpoint.Write(cw, snap); err != nil {
			return err
		}
		o.Checkpoints.Inc()
		o.CheckpointBytes.Observe(cw.n)
		o.Emit(obs.Event{Cycle: s.Machine.Cycles, Kind: obs.EvCheckpoint, A: cw.n})
		return nil
	}
	return checkpoint.Write(w, snap)
}

// countingWriter tallies bytes for the checkpoint-size histogram.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += uint64(n)
	return n, err
}

// Restore resumes a snapshot written by Checkpoint. The receiving system
// must be built the same way as the one that was snapshotted: same
// Config, same workload loaded (Setup re-runs deterministically and is
// verified against the snapshot's address-space fingerprint), and the
// same profiler attached. Corrupt data returns a typed checkpoint error
// (ErrBadCheckpoint and friends); a well-formed snapshot for a different
// setup returns ErrSnapshotMismatch.
func (s *System) Restore(r io.Reader) error {
	if s.workload == nil {
		return fmt.Errorf("membottle: load the workload before restoring")
	}
	snap, err := checkpoint.Read(r)
	if err != nil {
		return err
	}
	if got := checkpoint.Fingerprint(s.Machine.Space); got != snap.Space {
		return fmt.Errorf("%w: address-space fingerprint %+v differs from snapshot %+v",
			ErrSnapshotMismatch, got, snap.Space)
	}
	if name := s.workloadName(); snap.Workload.Name != name {
		return fmt.Errorf("%w: snapshot is for workload %q, system has %q",
			ErrSnapshotMismatch, snap.Workload.Name, name)
	}
	wc, ok := s.workload.(machine.Checkpointer)
	if !ok {
		return fmt.Errorf("%w: workload %s", ErrNotCheckpointable, s.workloadName())
	}
	if err := wc.RestoreState(snap.Workload.Data); err != nil {
		return err
	}
	if snap.Profiler != nil {
		if s.profiler == nil {
			return fmt.Errorf("%w: snapshot carries profiler state %q but no profiler is attached",
				ErrSnapshotMismatch, snap.Profiler.Name)
		}
		pc, ok := s.profiler.(machine.Checkpointer)
		if !ok {
			return fmt.Errorf("%w: profiler %T", ErrNotCheckpointable, s.profiler)
		}
		if name := fmt.Sprintf("%T", s.profiler); name != snap.Profiler.Name {
			return fmt.Errorf("%w: snapshot profiler %q, attached %q",
				ErrSnapshotMismatch, snap.Profiler.Name, name)
		}
		if err := pc.RestoreState(snap.Profiler.Data); err != nil {
			return err
		}
	} else if s.profiler != nil {
		return fmt.Errorf("%w: snapshot has no profiler state but %T is attached",
			ErrSnapshotMismatch, s.profiler)
	}
	if err := s.Machine.Cache.SetState(snap.Cache); err != nil {
		return err
	}
	if err := s.Machine.PMU.SetState(snap.PMU); err != nil {
		return err
	}
	s.Machine.SetState(snap.Machine)
	if snap.Truth != nil {
		if s.Truth == nil {
			return fmt.Errorf("%w: snapshot tracks ground truth but SkipTruth is set", ErrSnapshotMismatch)
		}
		if err := s.Truth.SetState(*snap.Truth); err != nil {
			return err
		}
	} else if s.Truth != nil {
		return fmt.Errorf("%w: snapshot lacks ground-truth state but this system tracks it", ErrSnapshotMismatch)
	}
	if s.checker != nil {
		s.checker.Resync()
	}
	return nil
}

// Overhead summarizes the instrumentation cost of the run so far.
type Overhead struct {
	// Interrupts delivered to the profiler.
	Interrupts uint64
	// HandlerCycles spent delivering and executing handlers.
	HandlerCycles uint64
	// TotalCycles of the whole simulation.
	TotalCycles uint64
	// TotalMisses in the cache, application and instrumentation combined.
	TotalMisses uint64
	// AppInstructions executed.
	AppInstructions uint64
}

// SlowdownPct returns handler cycles as a percentage of non-handler time,
// the quantity of the paper's Figure 4.
func (o Overhead) SlowdownPct() float64 {
	app := o.TotalCycles - o.HandlerCycles
	if app == 0 {
		return 0
	}
	return 100 * float64(o.HandlerCycles) / float64(app)
}

// InterruptsPerBillionCycles is the paper's §3.3 interrupt-rate metric.
func (o Overhead) InterruptsPerBillionCycles() float64 {
	if o.TotalCycles == 0 {
		return 0
	}
	return float64(o.Interrupts) * 1e9 / float64(o.TotalCycles)
}

// Overhead reports the run's instrumentation cost.
func (s *System) Overhead() Overhead {
	return Overhead{
		Interrupts:      s.Machine.Interrupts,
		HandlerCycles:   s.Machine.HandlerCycles,
		TotalCycles:     s.Machine.Cycles,
		TotalMisses:     s.Machine.Cache.Stats.Misses,
		AppInstructions: s.Machine.AppInsts,
	}
}

// FlushObs records the run's end-of-run totals into the attached
// observability registry: cycle and instruction counters, cache and PMU
// totals, fault and sanitizer tallies, and a final miss-rate gauge.
// Idempotent per system — a second call is a no-op — and a no-op when no
// Obs is configured. Call it after Run/RunContext completes.
func (s *System) FlushObs() {
	o := s.Machine.Obs
	if o == nil || s.obsFlushed {
		return
	}
	s.obsFlushed = true
	m := s.Machine
	r := o.Registry
	r.Counter("sim.cycles").Add(m.Cycles)
	r.Counter("sim.insts").Add(m.Insts)
	r.Counter("sim.app_insts").Add(m.AppInsts)
	r.Counter("sim.handler_cycles").Add(m.HandlerCycles)
	st := m.Cache.Stats
	r.Counter("cache.refs").Add(st.Accesses())
	r.Counter("cache.misses").Add(st.Misses)
	r.Counter("pmu.global_misses").Add(m.PMU.GlobalMisses)
	if fs := s.FaultStats(); fs != nil {
		o.FaultsInjected.Add(fs.Total())
	}
	if b, v := s.SanitizeReport(); b > 0 || v > 0 {
		r.Counter("sanitize.boundaries").Add(b)
		r.Counter("sanitize.violations").Add(v)
	}
	if refs := st.Accesses(); refs > 0 {
		r.Gauge("sim.last_run_miss_pct").Set(100 * float64(st.Misses) / float64(refs))
	}
	o.Runs.Inc()
}

// AttachProgress installs a periodic progress line driven by the
// machine's step-boundary hook: percent of budget completed, cycle count,
// wall-clock simulation rate, and the live miss rate since the previous
// line. Output is wall-clock rate-limited to one line per `every` and
// written outside the simulation, so it cannot perturb determinism.
// Chains any existing OnStep hook. Returns the Progress for line counts.
func (s *System) AttachProgress(w io.Writer, every time.Duration, budget uint64) *obs.Progress {
	p := &obs.Progress{W: w, Every: every}
	prev := s.Machine.OnStep
	s.Machine.OnStep = func(m *machine.Machine) {
		if prev != nil {
			prev(m)
		}
		st := m.Cache.Stats
		p.Tick(m.Cycles, m.AppInsts, budget, st.Accesses(), st.Misses)
	}
	return p
}
