// Package membottle reproduces the system of Buck & Hollingsworth,
// "Using Hardware Performance Monitors to Isolate Memory Bottlenecks"
// (SC 2000): a simulation environment in which two data-centric cache
// profiling techniques — cache-miss address sampling and an n-way search
// over the address space using base/bounds miss counters — attribute
// cache misses to source-level data structures.
//
// A System bundles a simulated machine (virtual CPU + set-associative
// cache + performance-monitor unit) with an object map. Load a workload
// (one of the built-in SPEC95 recreations or your own machine.Workload),
// attach a Profiler (NewSampler or NewSearch), Run, and read the ranked
// Estimates:
//
//	sys := membottle.NewSystem(membottle.DefaultConfig())
//	if err := sys.LoadWorkloadByName("tomcatv"); err != nil { ... }
//	prof := membottle.NewSearch(membottle.SearchConfig{N: 10})
//	if err := sys.Attach(prof); err != nil { ... }
//	sys.Run(100_000_000)
//	for _, e := range prof.Estimates() {
//	    fmt.Printf("%-8s %5.1f%%\n", e.Object.Name, e.Pct)
//	}
//
// The profiler's own code runs *inside* the simulation: its handler
// cycles (including the 8,800-cycle interrupt delivery cost the paper
// measured on an SGI Octane) and its cache footprint are part of the
// simulated execution, so instrumentation cost (Figure 4) and cache
// perturbation (Figure 3) are measurable via Overhead and the cache
// statistics.
package membottle

import (
	"fmt"

	"membottle/internal/cache"
	"membottle/internal/core"
	"membottle/internal/machine"
	"membottle/internal/mem"
	"membottle/internal/objmap"
	"membottle/internal/pmu"
	"membottle/internal/truth"
	"membottle/internal/workload"
)

// Re-exported configuration and result types, so that typical use needs
// only this package.
type (
	// CacheConfig describes the simulated cache geometry.
	CacheConfig = cache.Config
	// CostModel holds the virtual-cycle charges of the simulated CPU.
	CostModel = machine.CostModel
	// Machine is the simulated processor workloads run on; custom
	// workloads receive it in Setup and Step and issue references through
	// its Load, Store, Compute, and Malloc methods.
	Machine = machine.Machine
	// Workload is a simulated application; implement it to profile your
	// own access patterns.
	Workload = machine.Workload
	// Profiler is either technique: *Sampler or *Search.
	Profiler = core.Profiler
	// Estimate is one ranked result row.
	Estimate = core.Estimate
	// SamplerConfig configures miss-address sampling (§2.1 of the paper).
	SamplerConfig = core.SamplerConfig
	// SearchConfig configures the n-way search (§2.2 of the paper).
	SearchConfig = core.SearchConfig
	// Sampler is the miss-address sampling profiler.
	Sampler = core.Sampler
	// Search is the n-way search profiler.
	Search = core.Search
	// IntervalMode selects fixed, prime, or random sample spacing.
	IntervalMode = core.IntervalMode
	// GroundTruth is the exact per-object accounting of a run.
	GroundTruth = truth.Counter
	// ObjectMap resolves addresses to program objects; reachable as
	// System.Objects for frame-layout registration and inspection.
	ObjectMap = objmap.Map
	// Object is one profiled program object (global, heap block, arena
	// group, or stack variable).
	Object = objmap.Object
	// LocalVar declares one local variable of a frame layout, standing in
	// for debug information (stack-variable support, the paper's §5).
	LocalVar = objmap.LocalVar
	// Arena groups related heap allocations contiguously so the search
	// can treat them as a unit (the paper's §5); create via
	// System.Machine.Space.NewArena.
	Arena = mem.Arena
)

// AggregateByName merges estimates whose objects share a name — all
// activations of the same stack local, or all blocks of one allocation
// site (the paper's §5 aggregation proposal).
func AggregateByName(es []Estimate) []Estimate { return core.AggregateByName(es) }

// Interval modes for SamplerConfig.Mode.
const (
	IntervalFixed  = core.IntervalFixed
	IntervalPrime  = core.IntervalPrime
	IntervalRandom = core.IntervalRandom
)

// NewSampler constructs a sampling profiler.
func NewSampler(cfg SamplerConfig) *Sampler { return core.NewSampler(cfg) }

// NewSearch constructs an n-way search profiler.
func NewSearch(cfg SearchConfig) *Search { return core.NewSearch(cfg) }

// Workloads lists the built-in workload names (the paper's seven SPEC95
// applications plus the Figure 2 synthetic scenario).
func Workloads() []string { return workload.Names() }

// NewWorkload instantiates a built-in workload by name.
func NewWorkload(name string) (Workload, error) { return workload.New(name) }

// Config assembles a simulated system.
type Config struct {
	// Cache is the simulated cache geometry. Defaults to the paper's
	// evaluation cache: 2 MB, 64-byte lines, 4-way, LRU.
	Cache CacheConfig
	// Costs is the virtual-cycle model. Defaults include the paper's
	// 8,800-cycle interrupt delivery cost.
	Costs CostModel
	// Counters is the number of PMU region counters (plus the implicit
	// global counter). The paper assumes ten. Sampling needs none.
	Counters int
	// Timeshare, if positive, emulates having only that many physical
	// conditional counters, multiplexed across the programmed regions
	// every TimeshareQuantum cycles (the paper's "timesharing the single
	// conditional counter" alternative).
	Timeshare        int
	TimeshareQuantum uint64
	// TrackTruth attaches exact ground-truth accounting (the "Actual"
	// column). Enabled by default in NewSystem; set SkipTruth to disable.
	SkipTruth bool
	// ScalarRefs disables the batched reference fast path, forcing every
	// memory reference through the per-reference scalar loop. Batched and
	// scalar execution are bit-identical (the differential oracle tests
	// enforce it); scalar mode is the trusted baseline those tests and
	// cmd/mbbench compare against.
	ScalarRefs bool
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Cache:    cache.DefaultConfig(),
		Costs:    machine.DefaultCosts(),
		Counters: 10,
	}
}

// System is one simulated machine with an object map and (optionally)
// ground-truth accounting.
type System struct {
	Machine *machine.Machine
	Objects *objmap.Map
	// Truth is exact per-object accounting, nil if SkipTruth was set.
	Truth *GroundTruth

	workload Workload
	profiler Profiler
}

// NewSystem builds an empty simulated system.
func NewSystem(cfg Config) *System {
	if cfg.Cache == (CacheConfig{}) {
		cfg.Cache = cache.DefaultConfig()
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = machine.DefaultCosts()
	}
	space := newSpace()
	c := cache.New(cfg.Cache)
	p := pmu.New(cfg.Counters)
	if cfg.Timeshare > 0 {
		q := cfg.TimeshareQuantum
		if q == 0 {
			q = 100_000
		}
		p.EnableTimesharing(cfg.Timeshare, q)
	}
	m := machine.New(space, c, p, cfg.Costs)
	m.Scalar = cfg.ScalarRefs
	om := objmap.New(space)
	om.BindSpace(space)
	sys := &System{Machine: m, Objects: om}
	if !cfg.SkipTruth {
		sys.Truth = truth.Attach(m, om)
	}
	return sys
}

// LoadWorkload runs the workload's Setup and ingests its globals and heap
// blocks into the object map.
func (s *System) LoadWorkload(w Workload) {
	s.workload = w
	w.Setup(s.Machine)
	s.Objects.SyncGlobals(s.Machine.Space)
}

// LoadWorkloadByName is LoadWorkload for the built-in registry.
func (s *System) LoadWorkloadByName(name string) error {
	w, err := workload.New(name)
	if err != nil {
		return err
	}
	s.LoadWorkload(w)
	return nil
}

// Attach installs a profiler. Call after LoadWorkload so the profiler
// sees the populated object map.
func (s *System) Attach(p Profiler) error {
	if s.workload == nil {
		return fmt.Errorf("membottle: attach after LoadWorkload, so the profiler sees the object map")
	}
	if err := p.Install(s.Machine, s.Objects); err != nil {
		return err
	}
	s.profiler = p
	return nil
}

// Run simulates until the application has executed at least budget
// instructions (instrumentation handler work does not count toward the
// budget, matching the paper's equal-application-instructions comparison).
func (s *System) Run(budget uint64) {
	s.Machine.Run(s.workload, budget)
}

// Overhead summarizes the instrumentation cost of the run so far.
type Overhead struct {
	// Interrupts delivered to the profiler.
	Interrupts uint64
	// HandlerCycles spent delivering and executing handlers.
	HandlerCycles uint64
	// TotalCycles of the whole simulation.
	TotalCycles uint64
	// TotalMisses in the cache, application and instrumentation combined.
	TotalMisses uint64
	// AppInstructions executed.
	AppInstructions uint64
}

// SlowdownPct returns handler cycles as a percentage of non-handler time,
// the quantity of the paper's Figure 4.
func (o Overhead) SlowdownPct() float64 {
	app := o.TotalCycles - o.HandlerCycles
	if app == 0 {
		return 0
	}
	return 100 * float64(o.HandlerCycles) / float64(app)
}

// InterruptsPerBillionCycles is the paper's §3.3 interrupt-rate metric.
func (o Overhead) InterruptsPerBillionCycles() float64 {
	if o.TotalCycles == 0 {
		return 0
	}
	return float64(o.Interrupts) * 1e9 / float64(o.TotalCycles)
}

// Overhead reports the run's instrumentation cost.
func (s *System) Overhead() Overhead {
	return Overhead{
		Interrupts:      s.Machine.Interrupts,
		HandlerCycles:   s.Machine.HandlerCycles,
		TotalCycles:     s.Machine.Cycles,
		TotalMisses:     s.Machine.Cache.Stats.Misses,
		AppInstructions: s.Machine.AppInsts,
	}
}
