module membottle

go 1.22
